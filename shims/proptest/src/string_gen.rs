//! Regex-subset string generation for `&str` strategies.
//!
//! Supports the pattern features the workspace's tests use: literal
//! characters, `\.`-style escapes, `.`, character classes with ranges and
//! negation, `(...)` groups, and `{m}` / `{m,n}` / `?` / `*` / `+`
//! repetition. Alternation (`|`) and anchors are not implemented; an
//! unsupported pattern panics with a clear message so the gap is visible
//! immediately rather than producing wrong data.

use crate::test_runner::TestRng;

/// One parsed regex element.
enum Node {
    /// A fixed character.
    Literal(char),
    /// `.` — any printable ASCII except newline (plus tab).
    AnyChar,
    /// `[...]` — a set of candidate chars, possibly negated.
    Class { chars: Vec<char>, negated: bool },
    /// `(...)` — a sequence treated as one unit.
    Group(Vec<Repeated>),
}

/// A node plus its repetition bounds.
struct Repeated {
    node: Node,
    min: u32,
    max: u32,
}

/// Characters drawn for `.` and for negated classes: printable ASCII plus
/// tab, minus any excluded set. Newline is never produced, matching the
/// default (non-DOTALL) meaning of `.`.
fn any_char_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    pool.push('\t');
    pool
}

/// Generate one string matching `pattern`.
///
/// # Panics
///
/// Panics when `pattern` uses regex features outside the supported
/// subset, or describes an unsatisfiable negated class.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_sequence(&chars, &mut pos, pattern);
    if pos != chars.len() {
        panic!("proptest shim: unsupported regex `{pattern}` (stuck at offset {pos})");
    }
    let mut out = String::new();
    emit_sequence(&seq, rng, &mut out, pattern);
    out
}

/// Parse until end of input or an unmatched `)`.
fn parse_sequence(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Repeated> {
    let mut seq = Vec::new();
    while *pos < chars.len() && chars[*pos] != ')' {
        let node = parse_node(chars, pos, pattern);
        let (min, max) = parse_repetition(chars, pos, pattern);
        seq.push(Repeated { node, min, max });
    }
    seq
}

fn parse_node(chars: &[char], pos: &mut usize, pattern: &str) -> Node {
    let c = chars[*pos];
    *pos += 1;
    match c {
        '.' => Node::AnyChar,
        '\\' => Node::Literal(parse_escape(chars, pos, pattern)),
        '[' => parse_class(chars, pos, pattern),
        '(' => {
            let inner = parse_sequence(chars, pos, pattern);
            if *pos >= chars.len() || chars[*pos] != ')' {
                panic!("proptest shim: unclosed group in regex `{pattern}`");
            }
            *pos += 1;
            Node::Group(inner)
        }
        '|' | '^' | '$' | '*' | '+' | '?' | '{' => {
            panic!("proptest shim: unsupported regex feature `{c}` in `{pattern}`")
        }
        other => Node::Literal(other),
    }
}

fn parse_escape(chars: &[char], pos: &mut usize, pattern: &str) -> char {
    let c = *chars
        .get(*pos)
        .unwrap_or_else(|| panic!("proptest shim: trailing backslash in regex `{pattern}`"));
    *pos += 1;
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        '0' => '\0',
        // Punctuation escapes (`\.`, `\\`, `\[`, ...) mean the literal.
        c if c.is_ascii_punctuation() => c,
        c => panic!("proptest shim: unsupported escape `\\{c}` in regex `{pattern}`"),
    }
}

fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Node {
    let negated = chars.get(*pos) == Some(&'^');
    if negated {
        *pos += 1;
    }
    let mut set = Vec::new();
    loop {
        let c = *chars
            .get(*pos)
            .unwrap_or_else(|| panic!("proptest shim: unclosed class in regex `{pattern}`"));
        *pos += 1;
        match c {
            ']' => break,
            '\\' => set.push(parse_escape(chars, pos, pattern)),
            _ => {
                // `a-z` range, unless `-` is the final member of the class.
                if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
                    *pos += 1;
                    let hi = chars[*pos];
                    *pos += 1;
                    let hi = if hi == '\\' { parse_escape(chars, pos, pattern) } else { hi };
                    assert!(
                        c <= hi,
                        "proptest shim: inverted class range `{c}-{hi}` in regex `{pattern}`"
                    );
                    set.extend((c..=hi).filter(|ch| ch.is_ascii()));
                } else {
                    set.push(c);
                }
            }
        }
    }
    if set.is_empty() {
        panic!("proptest shim: empty character class in regex `{pattern}`");
    }
    Node::Class { chars: set, negated }
}

/// Parse a trailing `{m}` / `{m,n}` / `?` / `*` / `+`; default is `{1}`.
fn parse_repetition(chars: &[char], pos: &mut usize, pattern: &str) -> (u32, u32) {
    /// Cap for open-ended repetition (`*`, `+`, `{m,}`).
    const UNBOUNDED_CAP: u32 = 32;
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *pos += 1;
            (1, UNBOUNDED_CAP)
        }
        Some('{') => {
            *pos += 1;
            let mut digits = String::new();
            while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                digits.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = digits
                .parse()
                .unwrap_or_else(|_| panic!("proptest shim: bad repetition in `{pattern}`"));
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    let mut digits = String::new();
                    while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                        digits.push(chars[*pos]);
                        *pos += 1;
                    }
                    if digits.is_empty() {
                        min.max(UNBOUNDED_CAP)
                    } else {
                        digits.parse().unwrap_or_else(|_| {
                            panic!("proptest shim: bad repetition in `{pattern}`")
                        })
                    }
                }
                _ => min,
            };
            if chars.get(*pos) != Some(&'}') {
                panic!("proptest shim: unclosed repetition in regex `{pattern}`");
            }
            *pos += 1;
            assert!(min <= max, "proptest shim: inverted repetition bounds in `{pattern}`");
            (min, max)
        }
        _ => (1, 1),
    }
}

fn emit_sequence(seq: &[Repeated], rng: &mut TestRng, out: &mut String, pattern: &str) {
    for rep in seq {
        let n = rep.min + (rng.below(u64::from(rep.max - rep.min) + 1) as u32);
        for _ in 0..n {
            emit_node(&rep.node, rng, out, pattern);
        }
    }
}

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String, pattern: &str) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::AnyChar => {
            let pool = any_char_pool();
            out.push(pool[rng.below(pool.len() as u64) as usize]);
        }
        Node::Class { chars, negated } => {
            if *negated {
                let pool: Vec<char> =
                    any_char_pool().into_iter().filter(|c| !chars.contains(c)).collect();
                assert!(
                    !pool.is_empty(),
                    "proptest shim: unsatisfiable negated class in `{pattern}`"
                );
                out.push(pool[rng.below(pool.len() as u64) as usize]);
            } else {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        Node::Group(seq) => emit_sequence(seq, rng, out, pattern),
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("string-gen-tests")
    }

    #[test]
    fn class_with_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z0-9-]{1,20}", &mut r);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn escaped_dot_is_literal() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{2,4}\\.[a-z]{2,6}", &mut r);
            let (host, tld) = s.split_once('.').expect("dot present");
            assert!((2..=4).contains(&host.len()), "{s:?}");
            assert!((2..=6).contains(&tld.len()), "{s:?}");
        }
    }

    #[test]
    fn negated_class_and_groups() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[^\\t]{0,20}(\\t[^\\t]{0,5}){0,7}", &mut r);
            // Every tab must come from the group separator, so fields
            // between tabs are at most 20 then at most 5 chars long.
            for (i, field) in s.split('\t').enumerate() {
                let cap = if i == 0 { 20 } else { 5 };
                assert!(field.chars().count() <= cap, "{s:?}");
            }
            assert!(s.split('\t').count() <= 8, "{s:?}");
        }
    }

    #[test]
    fn dot_excludes_newline() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate(".{0,50}", &mut r);
            assert!(!s.contains('\n'), "{s:?}");
            assert!(s.chars().count() <= 50, "{s:?}");
        }
    }

    #[test]
    fn exact_count_and_optional() {
        let mut r = rng();
        assert_eq!(generate("ab{3}c", &mut r), "abbbc");
        let mut sizes = std::collections::HashSet::new();
        for _ in 0..100 {
            sizes.insert(generate("x?", &mut r).len());
        }
        assert_eq!(sizes, [0usize, 1].into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn alternation_is_rejected() {
        generate("a|b", &mut rng());
    }
}
