//! Test-runner plumbing: config, deterministic RNG, failure reporting.

/// Runner configuration (only the `cases` knob is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator backing every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a test's name so each test draws a stable,
    /// distinct sequence.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo) as u64 + 1) as usize
    }
}

/// Prints the failing case number if dropped during a panic, replacing
/// upstream's shrink report.
pub struct CaseGuard {
    test_name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arm the guard for one case.
    pub fn new(test_name: &'static str, case: u32) -> Self {
        CaseGuard { test_name, case, armed: true }
    }

    /// Mark the case as passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed at generated case #{} \
                 (deterministic seed; re-running replays the same inputs)",
                self.test_name, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_and_inclusive_respect_bounds() {
        let mut r = TestRng::deterministic("bounds");
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
            let v = r.usize_inclusive(3, 9);
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn config_default_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
