//! Offline shim for the subset of `rand` this workspace uses.
//!
//! The synthetic-workload generator needs a seeded, deterministic PRNG
//! with `gen()`, `gen_range()` and `seed_from_u64()`. This shim provides
//! exactly that on a xoshiro256++ core seeded through SplitMix64 — the
//! same construction rand's `StdRng` documentation recommends for
//! reproducible simulation streams. It is **not** cryptographically
//! secure, which matches the generator's needs (and rand's own guidance
//! for seeded simulation).
//!
//! Determinism contract: for a fixed seed, the value stream is stable
//! across platforms and releases of this workspace. The synthetic-corpus
//! tests (`same_seed_same_corpus_different_seed_diverges`) pin this.

#![forbid(unsafe_code)]

/// Minimal core trait: a source of uniform 64-bit values.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their full value range via `gen()`.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform value over `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (shim stand-in for rand's
    /// `StdRng`; seeded streams are stable forever within this repo).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for state initialization.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!((5..10).contains(&r.gen_range(5..10)));
            assert!((20..=100).contains(&r.gen_range(20u8..=100)));
            let f = r.gen_range(-60.0f32..70.0);
            assert!((-60.0..70.0).contains(&f));
            let n = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_hits_every_small_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_are_not_constant() {
        let mut r = StdRng::seed_from_u64(11);
        let first: f64 = r.gen();
        assert!((0..100).any(|_| r.gen::<f64>() != first));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
