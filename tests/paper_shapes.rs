//! Qualitative-shape tests: on a paper-calibrated synthetic corpus the
//! reproduction must show the same *findings* the paper reports — who
//! wins, what clusters, what declines — even though absolute counts are
//! scaled down. These are the claims EXPERIMENTS.md records.

use gdelt::analysis::{figs_delay, figs_matrix, figs_volume, table3, table5, table67};
use gdelt::engine::coreport::CountryCoReport;
use gdelt::engine::crossreport::CrossReport;
use gdelt::model::country::CountryRegistry;
use gdelt::prelude::*;
use std::sync::OnceLock;

/// One shared mid-size corpus for all shape tests (generation is the
/// expensive part).
fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let cfg = gdelt::synth::paper_calibrated(1e-4, 4242);
        gdelt::synth::generate_dataset(&cfg).0
    })
}

fn ctx() -> ExecContext {
    ExecContext::builder().build()
}

#[test]
fn fig2_article_counts_follow_a_power_law() {
    let h = figs_volume::fig2(&ctx(), dataset());
    // Typical event covered by 1–5 sites (paper §V).
    let small: u64 = h.counts.iter().take(6).sum();
    let total = h.total_events();
    assert!(small as f64 / total as f64 > 0.75, "small-event mass {small}/{total}");
    let slope = h.loglog_slope();
    assert!(slope < -1.0, "power-law slope {slope} too shallow");
    // Weighted average near the paper's 3.36.
    let avg = h.weighted_mean();
    assert!((1.8..=6.0).contains(&avg), "articles/event {avg}");
}

#[test]
fn fig3_only_a_fraction_of_sources_active_per_quarter() {
    let d = dataset();
    let s = figs_volume::fig3(&ctx(), d);
    let n = d.sources.len() as f64;
    // Interior quarters: meaningfully fewer than all sources (paper: ~⅓).
    let mid = s.values[s.len() / 2];
    let frac = mid / n;
    assert!((0.1..=0.6).contains(&frac), "active fraction {frac}");
}

#[test]
fn figs45_volumes_decline_slightly_late_in_the_period() {
    let d = dataset();
    let ev = figs_volume::fig4(&ctx(), d);
    // 2018–19 sag relative to the 2016–17 plateau (paper Figs 4–5).
    let plateau: f64 = ev.values[4..8].iter().sum::<f64>() / 4.0;
    let late: f64 = ev.values[ev.len() - 4..].iter().sum::<f64>() / 4.0;
    assert!(late < plateau, "no late-period decline: {late} vs {plateau}");
}

#[test]
fn fig6_top_publishers_are_a_media_group_block() {
    let d = dataset();
    let data = figs_volume::fig6(&ctx(), d);
    let group =
        data.iter().filter(|(s, _, _)| d.sources.name(*s).contains("regionalgroup")).count();
    // Paper: 8 of the Top 10 are co-owned regional UK papers.
    assert!(group >= 6, "only {group}/10 top publishers from the planted group");
}

#[test]
fn table3_headliners_reach_saturation_coverage() {
    let d = dataset();
    let rows = table3::compute(&ctx(), d, 10);
    assert!(rows[0].url.contains("Orlando") || rows[0].url.contains("wikipedia"));
    // The top event reaches a large fraction of then-active sources.
    let s = figs_volume::fig3(&ctx(), d);
    let max_active = s.values.iter().cloned().fold(0.0f64, f64::max);
    let frac = rows[0].mentions as f64 / max_active;
    assert!(frac > 0.4, "top event coverage {frac} of peak active sources");
}

#[test]
fn table5_anglosphere_cluster() {
    let d = dataset();
    let reg = CountryRegistry::new();
    let cc = CountryCoReport::build(&ctx(), d, reg.len());
    let t5 = table5::compute(&cc, &reg);
    // Order: UK, USA, Australia, India, Italy, Canada, ZA, NG, BD, PH.
    let cluster_avg = (t5.jaccard.get(0, 1) + t5.jaccard.get(0, 2) + t5.jaccard.get(1, 2)) / 3.0;
    let periphery_avg =
        (t5.jaccard.get(7, 8) + t5.jaccard.get(7, 9) + t5.jaccard.get(8, 9) + t5.jaccard.get(4, 7))
            / 4.0;
    assert!(
        cluster_avg > 2.0 * periphery_avg,
        "UK-USA-AUS cluster ({cluster_avg:.4}) not dominant over periphery ({periphery_avg:.4})"
    );
}

#[test]
fn tables67_us_events_dominate_everyones_output() {
    let d = dataset();
    let reg = CountryRegistry::new();
    let cr = CrossReport::build(&ctx(), d, reg.len());
    let t = table67::compute(&cr, 10);
    assert_eq!(t.reported[0], reg.by_name("USA"));
    // Paper Table VII: US share of each top publisher's output 33–47%.
    for j in 0..5 {
        let share = t.percentages.get(0, j);
        assert!((15.0..=60.0).contains(&share), "US share for publisher column {j}: {share}");
    }
    // UK is highly active as a source but much less reported-on than
    // the US (paper §VI-D).
    let uk_row = t.reported.iter().position(|&c| c == reg.by_name("UK"));
    if let Some(uk) = uk_row {
        assert!(t.counts.get(0, 0) > t.counts.get(uk, 0));
    }
}

#[test]
fn fig8_us_row_is_brightest() {
    let d = dataset();
    let reg = CountryRegistry::new();
    let cr = CrossReport::build(&ctx(), d, reg.len());
    let f8 = figs_matrix::fig8(&cr, 50);
    let first: f64 = f8.log_counts.row(0).iter().sum();
    for r in 1..f8.log_counts.rows() {
        assert!(first >= f8.log_counts.row(r).iter().sum::<f64>(), "row {r} outshines the US");
    }
}

#[test]
fn fig9_delay_shapes() {
    let d = dataset();
    let f9 = figs_delay::fig9(&ctx(), d);
    // A sizeable share of sources have reported within 15 minutes at
    // least once (paper: about half).
    let active: u64 = f9.min_hist.iter().sum();
    let instant = f9.min_hist[0];
    assert!(
        instant as f64 / active as f64 > 0.25,
        "only {instant}/{active} sources with min delay < 1 interval"
    );
    // Maxima: nobody beyond the one-year cap.
    let max_delay = f9.stats.iter().map(|s| s.max).max().unwrap_or(0);
    assert!(max_delay <= 35_135, "max delay {max_delay} beyond one year");
    // The year-echo group exists (paper: outliers at ~30000+).
    assert!(*f9.max_hist.last().unwrap() > 0, "no year-late group");
    // All three speed groups populated.
    for (g, n) in f9.speed_groups {
        assert!(n > 0, "speed group {g:?} empty");
    }
}

#[test]
fn fig10_average_declines_median_stable() {
    let d = dataset();
    let (avg, med) = figs_delay::fig10(&ctx(), d);
    // Compare the mid-period plateau against the final year. (The first
    // quarters are excluded on both sides: year-echo articles only start
    // arriving once the archive is old enough to have year-old events,
    // the same ramp the real archive has.)
    let mid = avg.len() / 2;
    let mid_avg: f64 = avg.values[mid - 2..mid + 2].iter().sum::<f64>() / 4.0;
    let late_avg: f64 = avg.values[avg.len() - 4..].iter().sum::<f64>() / 4.0;
    assert!(late_avg < mid_avg, "average delay did not decline: {mid_avg} -> {late_avg}");
    // Median comparatively stable: its absolute move is much smaller
    // than the average's decline (the paper's Fig 10b point — medians
    // sit at a few intervals while averages move by dozens).
    let mid_med: f64 = med.values[mid - 2..mid + 2].iter().sum::<f64>() / 4.0;
    let late_med: f64 = med.values[med.len() - 4..].iter().sum::<f64>() / 4.0;
    let avg_move = mid_avg - late_avg;
    let med_move = (mid_med - late_med).abs();
    assert!(med_move < avg_move, "median moved {med_move:.2} intervals vs average's {avg_move:.2}");
}

#[test]
fn fig11_late_articles_decline() {
    let d = dataset();
    let s = figs_delay::fig11(&ctx(), d);
    // Mid-period plateau vs final year (see fig10 note on the ramp).
    let mid = s.len() / 2;
    let plateau: f64 = s.values[mid - 2..mid + 2].iter().sum();
    let late: f64 = s.values[s.len() - 4..].iter().sum();
    assert!(late < plateau, "late-article count did not decline: {plateau} -> {late}");
}

#[test]
fn fig12_parallel_beats_sequential() {
    let d = dataset();
    if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) < 2 {
        return; // single-core CI machine: nothing to assert
    }
    let f12 = gdelt::analysis::fig12::compute(d, &[1, 2, 4], 3);
    let p1 = f12.points[0].seconds;
    let best = f12.points.iter().map(|p| p.seconds).fold(f64::INFINITY, f64::min);
    assert!(best <= p1 * 1.05, "parallel runs never beat sequential: 1T={p1:.4}s best={best:.4}s");
}
