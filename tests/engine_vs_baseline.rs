//! The specialized engine must agree *exactly* with independent
//! brute-force reference implementations computed straight from the
//! record streams — co-reporting, follow-reporting, cross-reporting and
//! delay statistics all have simple O(n²)-ish definitions worth paying
//! for in a test.

use gdelt::engine::baseline::RowStore;
use gdelt::engine::coreport::{CoReport, CountryCoReport};
use gdelt::engine::crossreport::CrossReport;
use gdelt::engine::delay::per_source_delay_stats;
use gdelt::engine::followreport::FollowReport;
use gdelt::model::country::CountryRegistry;
use gdelt::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn dataset() -> Dataset {
    gdelt::synth::generate_dataset(&gdelt::synth::scenario::tiny(121)).0
}

/// Brute force: per-event source sets from the raw columns.
fn event_source_sets(d: &Dataset) -> BTreeMap<u64, BTreeSet<u32>> {
    let mut map: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
    for row in 0..d.mentions.len() {
        map.entry(d.mentions.event_id[row]).or_default().insert(d.mentions.source[row]);
    }
    map
}

#[test]
fn coreport_matches_brute_force() {
    let d = dataset();
    let ctx = ExecContext::builder().threads(2).build();
    let cr = CoReport::build(&ctx, &d);
    let sets = event_source_sets(&d);

    // Reference e_i.
    let mut e = vec![0u64; d.sources.len()];
    let mut pairs: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for set in sets.values() {
        let v: Vec<u32> = set.iter().copied().collect();
        for (a, &i) in v.iter().enumerate() {
            e[i as usize] += 1;
            for &j in &v[a + 1..] {
                *pairs.entry((i, j)).or_default() += 1;
            }
        }
    }
    assert_eq!(cr.event_counts, e);
    for (&(i, j), &n) in &pairs {
        assert_eq!(cr.pair_count(i as usize, j as usize), n, "pair ({i},{j})");
    }
}

#[test]
fn followreport_matches_brute_force() {
    let d = dataset();
    let ctx = ExecContext::builder().threads(2).build();
    let subset: Vec<SourceId> = (0..8.min(d.sources.len())).map(|i| SourceId(i as u32)).collect();
    let fr = FollowReport::build(&ctx, &d, &subset);

    // Reference: group raw mentions by event, sort by interval, count
    // follows with strict-time semantics.
    let mut by_event: BTreeMap<u64, Vec<(u32, u32)>> = BTreeMap::new(); // (interval, source)
    for row in 0..d.mentions.len() {
        by_event
            .entry(d.mentions.event_id[row])
            .or_default()
            .push((d.mentions.mention_interval[row], d.mentions.source[row]));
    }
    let slot = |s: u32| subset.iter().position(|x| x.0 == s);
    let k = subset.len();
    let mut counts = vec![vec![0u64; k]; k];
    let mut articles = vec![0u64; k];
    for mentions in by_event.values_mut() {
        mentions.sort_unstable();
        for (idx, &(t, s)) in mentions.iter().enumerate() {
            let Some(j) = slot(s) else { continue };
            articles[j] += 1;
            let mut prior: BTreeSet<usize> = BTreeSet::new();
            for &(t2, s2) in &mentions[..idx] {
                if t2 < t {
                    if let Some(i) = slot(s2) {
                        prior.insert(i);
                    }
                }
            }
            for i in prior {
                counts[i][j] += 1;
            }
        }
    }
    assert_eq!(fr.articles, articles);
    for (i, row) in counts.iter().enumerate() {
        for (j, &expect) in row.iter().enumerate() {
            assert_eq!(fr.follow_counts.get(i, j), expect, "follow ({i},{j})");
        }
    }
}

#[test]
fn crossreport_matches_row_store_and_brute_force() {
    let d = dataset();
    let reg = CountryRegistry::new();
    let ctx = ExecContext::builder().threads(2).build();
    let engine = CrossReport::build(&ctx, &d, reg.len());

    // The naive row store is an independent (string-based) path.
    let naive = RowStore::from_dataset(&d).cross_report_naive();
    assert_eq!(engine.counts, naive.counts);
    assert_eq!(engine.articles_by_publisher, naive.articles_by_publisher);
    assert_eq!(engine.events_by_country, naive.events_by_country);

    // Totals line up with raw row counts.
    let known_publisher: u64 = (0..d.mentions.len())
        .filter(|&r| !d.sources.country_id(d.mentions.source_id(r)).is_unknown())
        .count() as u64;
    assert_eq!(engine.articles_by_publisher.iter().sum::<u64>(), known_publisher);
}

#[test]
fn country_coreport_is_consistent_with_source_coreport() {
    let d = dataset();
    let reg = CountryRegistry::new();
    let ctx = ExecContext::builder().threads(2).build();
    let cc = CountryCoReport::build(&ctx, &d, reg.len());

    // Brute force from per-event country sets.
    let sets = event_source_sets(&d);
    let mut e = vec![0u64; reg.len()];
    for set in sets.values() {
        let countries: BTreeSet<u16> = set
            .iter()
            .map(|&s| d.sources.country_id(SourceId(s)).0)
            .filter(|&c| (c as usize) < reg.len())
            .collect();
        for c in countries {
            e[c as usize] += 1;
        }
    }
    assert_eq!(cc.event_counts, e);
}

#[test]
fn delay_stats_match_brute_force() {
    let d = dataset();
    let ctx = ExecContext::builder().threads(2).build();
    let stats = per_source_delay_stats(&ctx, &d);

    let mut per_source: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for row in 0..d.mentions.len() {
        per_source.entry(d.mentions.source[row]).or_default().push(d.mentions.delay[row]);
    }
    for (s, delays) in per_source {
        let st = stats[s as usize];
        assert_eq!(st.count, delays.len() as u64);
        assert_eq!(st.min, *delays.iter().min().unwrap());
        assert_eq!(st.max, *delays.iter().max().unwrap());
        let mean = delays.iter().map(|&v| v as f64).sum::<f64>() / delays.len() as f64;
        assert!((st.mean - mean).abs() < 1e-9);
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        assert_eq!(st.median, sorted[(sorted.len() - 1) / 2]);
    }
}
