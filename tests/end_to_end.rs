//! End-to-end pipeline test: synthetic corpus → raw GDELT TSV + master
//! list → preprocessing (parse, clean, convert) → queryable dataset →
//! full paper report. Everything a real deployment would do, minus the
//! download.

use gdelt::analysis::report::{run_full_report, ReportOptions};
use gdelt::prelude::*;

#[test]
fn raw_text_pipeline_matches_direct_build() {
    let cfg = gdelt::synth::scenario::tiny(101);
    let data = gdelt::synth::generate(&cfg);
    let (events_tsv, mentions_tsv) = gdelt::synth::emit::to_tsv(&data);

    // Through the raw-text path (what `gdelt-cli convert` does).
    let mut b = DatasetBuilder::new();
    b.ingest_masterlist(&data.masterlist);
    b.ingest_events_text(&events_tsv);
    b.ingest_mentions_text(&mentions_tsv);
    let (from_text, report_text) = b.build();

    // Through the direct path.
    let (direct, report_direct) = gdelt::synth::generate_dataset(&cfg);

    assert_eq!(from_text.events.len(), direct.events.len());
    assert_eq!(from_text.mentions.len(), direct.mentions.len());
    assert_eq!(from_text.sources.len(), direct.sources.len());
    assert_eq!(from_text.events.id.as_slice(), direct.events.id.as_slice());
    assert_eq!(from_text.mentions.delay.as_slice(), direct.mentions.delay.as_slice());
    assert_eq!(report_text.missing_source_url, report_direct.missing_source_url);
    assert_eq!(report_text.future_event_date, report_direct.future_event_date);
    assert_eq!(report_text.malformed_masterlist, report_direct.malformed_masterlist);
    from_text.validate().expect("text-built dataset invariants");
}

#[test]
fn full_report_runs_on_pipeline_output() {
    let cfg = gdelt::synth::scenario::tiny(102);
    let (dataset, clean) = gdelt::synth::generate_dataset(&cfg);
    let ctx = ExecContext::builder().threads(2).build();
    let report = run_full_report(&ctx, &dataset, &clean, ReportOptions::default());
    // Every paper exhibit is present and non-trivial.
    for section in [
        "Table I",
        "Table II",
        "Table III",
        "Table IV",
        "Table V",
        "Table VI",
        "Table VII",
        "Table VIII",
        "Figure 2",
        "Figure 3",
        "Figure 4",
        "Figure 5",
        "Figure 6",
        "Figure 7",
        "Figure 8",
        "Figure 9",
        "Figure 10",
        "Figure 11",
        "Clusters",
        "Tone",
        "Wildfires",
        "Dyads",
    ] {
        let body = report.section(section).unwrap_or_else(|| panic!("missing {section}"));
        assert!(body.len() > 40, "{section} suspiciously short: {body:?}");
    }
}

#[test]
fn results_are_reproducible_across_runs() {
    let cfg = gdelt::synth::scenario::tiny(103);
    let (d1, _) = gdelt::synth::generate_dataset(&cfg);
    let (d2, _) = gdelt::synth::generate_dataset(&cfg);
    let ctx = ExecContext::builder().threads(4).build();
    let r1 = run_full_report(&ctx, &d1, &Default::default(), ReportOptions::default());
    let r2 = run_full_report(&ctx, &d2, &Default::default(), ReportOptions::default());
    assert_eq!(r1.render(), r2.render(), "report must be deterministic per seed");
}

#[test]
fn different_seeds_produce_different_corpora() {
    let (a, _) = gdelt::synth::generate_dataset(&gdelt::synth::scenario::tiny(104));
    let (b, _) = gdelt::synth::generate_dataset(&gdelt::synth::scenario::tiny(105));
    assert_ne!(a.mentions.len(), 0);
    // Same structure, different draws.
    assert_ne!(
        a.mentions.delay.as_slice(),
        b.mentions.delay.as_slice(),
        "seeds 104/105 produced identical delay streams"
    );
}
