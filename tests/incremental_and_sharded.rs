//! Integration tests for the two system extensions: the 15-minute
//! incremental update path (batch appends must equal a full rebuild)
//! and the simulated distributed-memory execution (sharded queries must
//! equal single-node results on a realistic synthetic corpus).

use gdelt::columnar::incremental::append_batch;
use gdelt::engine::query::AggregatedCountryReport;
use gdelt::engine::sharded::ShardedDataset;
use gdelt::prelude::*;

fn corpus() -> (Vec<gdelt::model::EventRecord>, Vec<gdelt::model::MentionRecord>) {
    let cfg = gdelt::synth::scenario::tiny(131);
    let data = gdelt::synth::generate(&cfg);
    (data.events, data.mentions)
}

fn build(
    events: Vec<gdelt::model::EventRecord>,
    mentions: Vec<gdelt::model::MentionRecord>,
) -> Dataset {
    let mut b = DatasetBuilder::new();
    for e in events {
        b.add_event(e);
    }
    for m in mentions {
        b.add_mention(m);
    }
    b.build().0
}

fn serialized(d: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    gdelt::columnar::binfmt::write_dataset(&mut buf, d).expect("serialize");
    buf
}

#[test]
fn quarter_hour_batches_equal_full_rebuild() {
    let (events, mentions) = corpus();

    // Replay the corpus as five chronological batches, the way GDELT
    // actually arrives. The full-rebuild reference consumes the same
    // stream order (ingestion order is the tie-breaker for identical
    // (event, interval) mentions, so byte-equality requires it).
    let mut sorted_events = events;
    sorted_events.sort_by_key(|e| e.date_added);
    let mut sorted_mentions = mentions;
    sorted_mentions.sort_by_key(|a| a.mention_time);
    let full = build(sorted_events.clone(), sorted_mentions.clone());

    let chunks = 5;
    let e_step = sorted_events.len().div_ceil(chunks);
    let m_step = sorted_mentions.len().div_ceil(chunks);
    let mut current = build(sorted_events[..e_step].to_vec(), sorted_mentions[..m_step].to_vec());
    for i in 1..chunks {
        let e_lo = (i * e_step).min(sorted_events.len());
        let e_hi = ((i + 1) * e_step).min(sorted_events.len());
        let m_lo = (i * m_step).min(sorted_mentions.len());
        let m_hi = ((i + 1) * m_step).min(sorted_mentions.len());
        let (next, stats, _) = append_batch(
            &current,
            sorted_events[e_lo..e_hi].to_vec(),
            sorted_mentions[m_lo..m_hi].to_vec(),
        );
        assert!(stats.new_events > 0 || e_lo == e_hi);
        next.validate().expect("intermediate dataset valid");
        current = next;
    }

    assert_eq!(current.events.len(), full.events.len());
    assert_eq!(current.mentions.len(), full.mentions.len());
    assert_eq!(serialized(&current), serialized(&full), "incremental != rebuild");
}

#[test]
fn incremental_updates_preserve_query_results() {
    let (events, mentions) = corpus();
    let half_e = events.len() / 2;
    let half_m = mentions.len() / 2;
    let base = build(events[..half_e].to_vec(), mentions[..half_m].to_vec());
    let (updated, _, _) =
        append_batch(&base, events[half_e..].to_vec(), mentions[half_m..].to_vec());
    let full = build(events, mentions);

    let ctx = ExecContext::builder().threads(2).build();
    let a = AggregatedCountryReport::run(&ctx, &updated);
    let b = AggregatedCountryReport::run(&ctx, &full);
    assert_eq!(a, b);
}

#[test]
fn sharded_execution_matches_single_node_on_synthetic_corpus() {
    let (events, mentions) = corpus();
    let d = build(events, mentions);
    let ctx = ExecContext::builder().threads(2).build();
    let single = AggregatedCountryReport::run(&ctx, &d);

    for shards in [2usize, 3, 8] {
        let sd = ShardedDataset::split(&d, shards);
        assert_eq!(sd.total_events(), d.events.len());
        assert_eq!(sd.total_mentions(), d.mentions.len());
        let dist = sd.aggregated_cross_report(&ctx);
        assert_eq!(dist, single, "shards={shards}");
    }
}

#[test]
fn sharding_then_updating_is_consistent() {
    // Combine both extensions: update a dataset, then shard it; the
    // distributed query must still match the single-node result.
    let (events, mentions) = corpus();
    let half = events.len() / 2;
    let base = build(events[..half].to_vec(), mentions[..mentions.len() / 2].to_vec());
    let (updated, _, _) =
        append_batch(&base, events[half..].to_vec(), mentions[mentions.len() / 2..].to_vec());

    let ctx = ExecContext::builder().threads(2).build();
    let single = AggregatedCountryReport::run(&ctx, &updated);
    let dist = ShardedDataset::split(&updated, 4).aggregated_cross_report(&ctx);
    assert_eq!(dist, single);
}
