//! The indexed binary format round-trips a full synthetic corpus through
//! disk, and the reloaded dataset answers every query identically.

use gdelt::analysis::report::{run_full_report, ReportOptions};
use gdelt::columnar::binfmt;
use gdelt::prelude::*;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("gdelt_it");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn file_round_trip_preserves_query_results() {
    let cfg = gdelt::synth::scenario::tiny(111);
    let (dataset, _) = gdelt::synth::generate_dataset(&cfg);

    let path = temp_path("roundtrip.gdhpc");
    binfmt::save(&path, &dataset).expect("save");
    let loaded = binfmt::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    loaded.validate().expect("reloaded invariants");
    assert_eq!(loaded.events.len(), dataset.events.len());
    assert_eq!(loaded.mentions.len(), dataset.mentions.len());

    let ctx = ExecContext::builder().threads(2).build();
    let before = run_full_report(&ctx, &dataset, &Default::default(), ReportOptions::default());
    let after = run_full_report(&ctx, &loaded, &Default::default(), ReportOptions::default());
    assert_eq!(before.render(), after.render());
}

#[test]
fn corrupted_file_is_rejected() {
    let cfg = gdelt::synth::scenario::tiny(112);
    let (dataset, _) = gdelt::synth::generate_dataset(&cfg);
    let path = temp_path("corrupt.gdhpc");
    binfmt::save(&path, &dataset).expect("save");
    // Flip one byte near the end (inside a payload).
    let mut bytes = std::fs::read(&path).expect("read back");
    let at = bytes.len() - 20;
    bytes[at] ^= 0xA5;
    std::fs::write(&path, &bytes).expect("rewrite");
    let err = binfmt::load(&path).expect_err("corruption must be detected");
    std::fs::remove_file(&path).ok();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn binary_is_much_denser_than_tsv() {
    let cfg = gdelt::synth::scenario::tiny(113);
    let data = gdelt::synth::generate(&cfg);
    let (etsv, mtsv) = gdelt::synth::emit::to_tsv(&data);
    let tsv_bytes = etsv.len() + mtsv.len();

    let mut b = DatasetBuilder::new();
    for e in data.events {
        b.add_event(e);
    }
    for m in data.mentions {
        b.add_mention(m);
    }
    let (dataset, _) = b.build();
    let mut bin = Vec::new();
    binfmt::write_dataset(&mut bin, &dataset).expect("serialize");
    assert!(
        bin.len() * 2 < tsv_bytes,
        "binary ({}) should be far denser than TSV ({})",
        bin.len(),
        tsv_bytes
    );
}
