//! CLI smoke tests: the `gdelt-cli` binary's generate → convert →
//! report loop works end to end on a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gdelt-cli"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gdelt_cli_it").join(name);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("convert"));
}

#[test]
fn unknown_command_fails() {
    let out = cli().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_convert_report_loop() {
    let dir = temp_dir("loop");
    // Tiny scale to keep the test fast.
    let out = cli()
        .args(["generate", "--out"])
        .arg(&dir)
        .args(["--scale", "0.00002", "--seed", "9"])
        .output()
        .expect("generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("events.export.tsv").exists());
    assert!(dir.join("mentions.tsv").exists());
    assert!(dir.join("masterfilelist.txt").exists());

    let bin = dir.join("data.gdhpc");
    let out =
        cli().args(["convert", "--in"]).arg(&dir).arg("--out").arg(&bin).output().expect("convert");
    assert!(out.status.success(), "convert failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table II"), "convert must print the cleaning report");
    assert!(bin.exists());

    let out = cli()
        .args(["report", "--data"])
        .arg(&bin)
        .args(["--threads", "2"])
        .output()
        .expect("report");
    assert!(out.status.success(), "report failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for section in ["Table I", "Table IV", "Figure 9", "Figure 11"] {
        assert!(stdout.contains(section), "report missing {section}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn synth_report_runs_without_files() {
    let out = cli()
        .args(["synth-report", "--scale", "0.00002", "--seed", "5", "--threads", "2"])
        .output()
        .expect("synth-report");
    assert!(out.status.success(), "failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"));
    assert!(stdout.contains("Table II"));
    assert!(stdout.contains("Figure 10"));
}

#[test]
fn query_and_update_subcommands() {
    let dir = temp_dir("query");
    let out = cli()
        .args(["generate", "--out"])
        .arg(&dir)
        .args(["--scale", "0.00002", "--seed", "11"])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let bin = dir.join("data.gdhpc");
    let out =
        cli().args(["convert", "--in"]).arg(&dir).arg("--out").arg(&bin).output().expect("convert");
    assert!(out.status.success());

    // Windowed top-publisher query.
    let out = cli()
        .args(["query", "--data"])
        .arg(&bin)
        .args(["--top", "3", "--window", "2016Q1:2017Q4", "--pair", "UK,USA"])
        .output()
        .expect("query");
    assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top 3 publishers"));
    assert!(stdout.contains("co-reporting Jaccard"));

    // Apply the same raw directory as an update batch (all duplicates —
    // the dataset must survive unchanged in size).
    let out =
        cli().args(["update", "--data"]).arg(&bin).arg("--in").arg(&dir).output().expect("update");
    assert!(out.status.success(), "update failed: {}", String::from_utf8_lossy(&out.stderr));
    let msg = String::from_utf8_lossy(&out.stderr);
    assert!(msg.contains("dup dropped"), "unexpected update output: {msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_rejects_unknown_source() {
    let dir = temp_dir("query_bad");
    let out = cli()
        .args(["generate", "--out"])
        .arg(&dir)
        .args(["--scale", "0.00002", "--seed", "12"])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let bin = dir.join("data.gdhpc");
    assert!(cli()
        .args(["convert", "--in"])
        .arg(&dir)
        .arg("--out")
        .arg(&bin)
        .output()
        .unwrap()
        .status
        .success());
    let out = cli()
        .args(["query", "--data"])
        .arg(&bin)
        .args(["--source", "no-such-domain.example"])
        .output()
        .expect("query");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown source"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_bench_check_passes_at_low_load() {
    let out = cli()
        .args(["serve-bench", "--scale", "0.00002", "--seed", "21", "--queries", "60", "--check"])
        .output()
        .expect("serve-bench");
    assert!(out.status.success(), "serve-bench failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("replay:"), "missing replay report: {stdout}");
    assert!(stdout.contains("service metrics"), "missing metrics snapshot: {stdout}");
    assert!(stderr.contains("check passed"), "check did not pass: {stderr}");
}

#[test]
fn serve_bench_no_cache_reports_zero_hits() {
    let out = cli()
        .args([
            "serve-bench",
            "--scale",
            "0.00002",
            "--seed",
            "21",
            "--queries",
            "40",
            "--no-cache",
        ])
        .output()
        .expect("serve-bench");
    assert!(out.status.success(), "serve-bench failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cache disabled"), "expected cache disabled banner: {stderr}");
    assert!(stdout.contains("0 hits"), "no-cache run must report zero hits: {stdout}");
}

#[test]
fn missing_required_flag_is_an_error() {
    let out = cli().arg("convert").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--in"));
}
